"""Baseline benchmark — prefix filter vs. the paper's algorithms.

Section IX discusses the prefix filter [2] adapted to weighted selections
(and judges it "subsumed by the SQL based approach" in the relational
context).  This benchmark quantifies the actual trade on the default
corpus: a much smaller index and a candidate-verification execution model,
versus the specialized algorithms' streaming reads.  Candidate counts
shrink with the threshold; every candidate costs a full set verification
plus a random fetch of the set, which is what the specialized algorithms'
sequential model avoids.
"""

from __future__ import annotations


from repro.algorithms.prefixfilter import PrefixFilterSearcher
from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result


def run_prefix_comparison(context, num_queries):
    pf = PrefixFilterSearcher(context.collection, tau_min=0.6)
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for tau in (0.6, 0.8, 0.9):
        pf_candidates = pf_answers = 0
        for q in workload:
            tokens = context.tokenizer.tokens(q)
            if not tokens:
                continue
            result = pf.search(tokens, tau)
            pf_candidates += result.peak_candidates
            pf_answers += len(result)
        sf = context.run_workload("sf", workload, tau)
        ita = context.run_workload("ita", workload, tau)
        rows.append(
            {
                "tau": tau,
                "pf_candidates_verified": pf_candidates,
                "pf_answers": pf_answers,
                "sf_elements_read": round(
                    sf.avg_elements_read * len(sf.per_query)
                ),
                "ita_elements_read": round(
                    ita.avg_elements_read * len(ita.per_query)
                ),
                "sf_answers": round(sf.avg_results * len(sf.per_query)),
            }
        )
    return pf, rows


def test_prefix_filter_baseline(benchmark, context, num_queries, results_dir):
    pf, rows = benchmark.pedantic(
        lambda: run_prefix_comparison(context, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "baseline_prefix_filter.txt", format_table(rows)
    )
    # Same answers as the specialized algorithms.
    for r in rows:
        assert r["pf_answers"] == r["sf_answers"], r
    # The prefix index is a fraction of the full inverted index.
    full = context.searcher.index.num_postings()
    assert pf.index_postings() < full
    # Candidates shrink as the threshold rises (the filter tightens) but
    # always dominate the answer count — the verification overhead that
    # the streaming algorithms do not pay.
    taus = [r["tau"] for r in rows]
    cands = [r["pf_candidates_verified"] for r in rows]
    assert cands == sorted(cands, reverse=True)
    for r in rows:
        assert r["pf_candidates_verified"] >= r["pf_answers"]
