"""Table I — average precision of TFIDF / IDF / BM25 / BM25' on cu1..cu8.

Protocol (Section II + [10]): graded-error datasets are built from clean
source strings plus erroneous duplicates; each dirty string is used as a
query, the database is ranked by each measure, and average precision is
computed against the query's duplicate group.  The paper's claims to
reproduce: precision rises from cu1 (dirty) to cu8 (clean), IDF tracks
TFIDF, and BM25' tracks BM25 — i.e. dropping the tf component costs nothing.
"""

from __future__ import annotations

import random


from repro.core.collection import SetCollection
from repro.core.similarity import measure_from_name
from repro.core.tokenize import WordQGramTokenizer
from repro.data.errors import NUM_ERROR_LEVELS, make_graded_dataset
from repro.data.synthetic import generate_records
from repro.eval.harness import format_table
from repro.eval.metrics import MeasureRanker, average_precision, mean

from conftest import write_result

MEASURES = ("tfidf", "idf", "bm25", "bm25p")
NUM_CLEAN = 150
DUPLICATES = 3
QUERIES_PER_LEVEL = 40


def _level_dataset(level: int):
    clean = generate_records(
        NUM_CLEAN, vocabulary_size=400, words_per_record=(2, 3), seed=31
    )
    return make_graded_dataset(
        level, clean, duplicates_per_string=DUPLICATES, seed=31
    )


def _average_precision_for_level(level: int):
    dataset = _level_dataset(level)
    tokenizer = WordQGramTokenizer(q=3)
    collection = SetCollection.from_strings(dataset.strings, tokenizer)
    ranker = MeasureRanker(collection)
    stats = collection.stats
    rng = random.Random(level)
    queries = rng.sample(
        dataset.dirty_indexes(),
        min(QUERIES_PER_LEVEL, len(dataset.dirty_indexes())),
    )
    out = {}
    for name in MEASURES:
        measure = measure_from_name(name, stats)
        aps = []
        for qi in queries:
            tokens = tokenizer.tokens(dataset.strings[qi])
            ranked = ranker.rank(tokens, measure, exclude={qi})
            relevant = set(dataset.relevant_for(qi))
            aps.append(
                average_precision([sid for sid, _ in ranked], relevant)
            )
        out[name] = mean(aps)
    return out


def build_table1():
    rows = []
    for level in range(1, NUM_ERROR_LEVELS + 1):
        ap = _average_precision_for_level(level)
        rows.append(
            {
                "dataset": f"cu{level}",
                "TFIDF": round(ap["tfidf"], 3),
                "IDF": round(ap["idf"], 3),
                "BM25": round(ap["bm25"], 3),
                "BM25'": round(ap["bm25p"], 3),
            }
        )
    return rows


def test_table1_shape(benchmark, results_dir):
    """The paper's Table I claims, asserted on the regenerated numbers."""
    table1_rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    write_result(
        results_dir, "table1_precision.txt", format_table(table1_rows)
    )
    # Precision improves from the dirtiest (cu1) to the cleanest (cu8);
    # absolute values are below the paper's (its cu datasets derive from a
    # gentler real-world error mix), but the trend and gaps are the claims.
    idf_col = [r["IDF"] for r in table1_rows]
    assert mean(idf_col[-2:]) > mean(idf_col[:2]) + 0.2
    # Dropping tf is harmless: IDF ~ TFIDF and BM25' ~ BM25 per level.
    for r in table1_rows:
        assert abs(r["IDF"] - r["TFIDF"]) < 0.05, r
        assert abs(r["BM25'"] - r["BM25"]) < 0.05, r
    # Clean datasets reach usable precision.
    assert idf_col[-1] > 0.7


def test_benchmark_idf_ranking(benchmark):
    """Timing anchor: rank one graded dataset under the IDF measure."""
    dataset = _level_dataset(5)
    tokenizer = WordQGramTokenizer(q=3)
    collection = SetCollection.from_strings(dataset.strings, tokenizer)
    ranker = MeasureRanker(collection)
    measure = measure_from_name("idf", collection.stats)
    queries = dataset.dirty_indexes()[:10]

    def run():
        for qi in queries:
            ranker.rank(
                tokenizer.tokens(dataset.strings[qi]), measure, exclude={qi}
            )

    benchmark(run)
