"""Shared sweep drivers for the Figure 6-9 benchmarks."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.data.workloads import GRAM_BUCKETS, make_workload
from repro.eval.harness import ExperimentContext, WorkloadSummary

ALL_ENGINES = (
    "sort-by-id",
    "sql",
    "ta",
    "nra",
    "inra",
    "ita",
    "sf",
    "hybrid",
)
LIST_ENGINES = ("ta", "nra", "inra", "ita", "sf", "hybrid")
IMPROVED_ENGINES = ("inra", "ita", "sf", "hybrid")


def threshold_sweep(
    context: ExperimentContext,
    engines: Sequence[str],
    num_queries: int,
    taus: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
) -> List[WorkloadSummary]:
    """Figure 6(a)/7(a): vary tau; 11-15 grams, 0 modifications."""
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    return [
        context.run_workload(engine, workload, tau)
        for tau in taus
        for engine in engines
    ]


def query_size_sweep(
    context: ExperimentContext,
    engines: Sequence[str],
    num_queries: int,
    tau: float = 0.8,
) -> List[WorkloadSummary]:
    """Figure 6(b)/7(b): vary the gram-count bucket at tau=0.8."""
    out: List[WorkloadSummary] = []
    for bucket in GRAM_BUCKETS:
        workload = make_workload(
            context.collection, bucket, num_queries, modifications=0, seed=78
        )
        out.extend(
            context.run_workload(engine, workload, tau) for engine in engines
        )
    return out


def modification_sweep(
    context: ExperimentContext,
    engines: Sequence[str],
    num_queries: int,
    tau: float = 0.6,
    modifications: Sequence[int] = (0, 1, 2, 3),
) -> List[WorkloadSummary]:
    """Figure 6(c)/7(c): vary modifications; 11-15 grams, tau=0.6."""
    out: List[WorkloadSummary] = []
    for mods in modifications:
        workload = make_workload(
            context.collection, (11, 15), num_queries,
            modifications=mods, seed=79,
        )
        out.extend(
            context.run_workload(engine, workload, tau) for engine in engines
        )
    return out


def rows_of(summaries: Sequence[WorkloadSummary]) -> List[Dict]:
    return [s.row() for s in summaries]


def pivot(
    summaries: Sequence[WorkloadSummary],
    x_key: str,
    value,
) -> Dict[str, Dict]:
    """engine -> {x -> value(summary)} for series-shaped assertions."""
    table: Dict[str, Dict] = {}
    for s in summaries:
        x = getattr(s, x_key) if hasattr(s, x_key) else s.row()[x_key]
        table.setdefault(s.engine, {})[x] = value(s)
    return table
