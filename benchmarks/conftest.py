"""Shared benchmark fixtures: the experiment corpus and context.

The corpus here plays the role of the paper's IMDB word table (Section
VIII-A): records are generated synthetically (see
:mod:`repro.data.synthetic`), decomposed into distinct words, and each word
becomes a set of padded 3-grams.  Workloads are smaller than the paper's
100-word ones (30 words per workload) purely to keep pure-Python benchmark
runtime reasonable; pass ``--repro-queries N`` / ``--repro-records N`` to
scale up.

Every benchmark writes its paper-style table into ``benchmarks/results/``
so the regenerated rows survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.synthetic import generate_word_database
from repro.data.workloads import make_workload
from repro.eval.harness import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-records",
        type=int,
        default=4000,
        help="synthetic records for the benchmark corpus",
    )
    parser.addoption(
        "--repro-queries",
        type=int,
        default=30,
        help="queries per workload (paper: 100)",
    )


@pytest.fixture(scope="session")
def corpus(request):
    records = request.config.getoption("--repro-records")
    collection, words = generate_word_database(
        num_records=records, vocabulary_size=max(records // 2, 500), seed=2008
    )
    return collection, words


@pytest.fixture(scope="session")
def context(corpus):
    collection, _words = corpus
    return ExperimentContext(collection)


@pytest.fixture(scope="session")
def num_queries(request):
    return request.config.getoption("--repro-queries")


@pytest.fixture(scope="session")
def default_workload(context, num_queries):
    """The paper's default workload: 11-15 grams, 0 modifications."""
    return make_workload(
        context.collection, bucket=(11, 15), count=num_queries,
        modifications=0, seed=77,
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a paper-style table and echo it for -s runs."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
